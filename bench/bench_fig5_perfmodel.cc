/**
 * @file
 * Regenerates paper Fig. 5: measured-vs-predicted performance-model
 * sweeps for the four collectives and GEMM on both testbeds, with the
 * fitted alpha/beta and r^2 values the paper reports in the caption.
 * The "measurements" come from the simulated cluster with 1% relative
 * noise, averaged over five runs, exactly mirroring §6.2's protocol.
 */
#include <cstdio>

#include "bench_util.h"
#include "core/profiler.h"

namespace {

using namespace fsmoe;

const char *
opName(core::ProfileOp op)
{
    switch (op) {
      case core::ProfileOp::AlltoAll: return "AlltoAll";
      case core::ProfileOp::AllGather: return "AllGather";
      case core::ProfileOp::ReduceScatter: return "ReduceScatter";
      case core::ProfileOp::AllReduce: return "AllReduce";
      case core::ProfileOp::Gemm: return "GEMM";
      default: return "?";
    }
}

void
runTestbed(sim::ClusterSpec cluster)
{
    cluster.measurementNoise = 0.01;
    bench::header("Fig. 5 performance models on " + cluster.name +
                  " (5-run averages, 1% noise)");
    core::Profiler profiler(cluster, /*seed=*/2025, /*runs=*/5);

    std::printf("%-14s %12s %12s %10s   sample fit (measured -> "
                "predicted, ms)\n",
                "op", "alpha[ms]", "beta[ms/u]", "r^2");
    for (core::ProfileOp op :
         {core::ProfileOp::AlltoAll, core::ProfileOp::AllGather,
          core::ProfileOp::ReduceScatter, core::ProfileOp::AllReduce,
          core::ProfileOp::Gemm}) {
        core::ProfileResult res = profiler.profile(op);
        std::printf("%-14s %12.3e %12.3e %10.6f", opName(op),
                    res.model.alpha, res.model.beta, res.model.r2);
        // Show first / middle / last sweep points.
        for (size_t i : {size_t{0}, res.sizes.size() / 2,
                         res.sizes.size() - 1}) {
            std::printf("  %7.3f->%7.3f", res.measured[i],
                        res.model.predict(res.sizes[i]));
        }
        std::printf("\n");
    }
    std::printf("\nPaper reference (Fig. 5 caption): r^2 >= 0.9987 for "
                "GEMM and >= 0.9999 for the collectives.\n\n");
}

} // namespace

int
main()
{
    runTestbed(fsmoe::sim::testbedA());
    runTestbed(fsmoe::sim::testbedB());
    return 0;
}
