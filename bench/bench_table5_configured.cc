/**
 * @file
 * Regenerates paper Table 5: average speedups of Tutel-Improved,
 * FSMoE-No-IIO and FSMoE over Tutel (with PipeMoE) across the 1458
 * configured MoE layers of Table 4, on both testbeds. Each configured
 * case is a single generalized layer with its gradient aggregation
 * included, exactly as §6.3 describes.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/schedules/schedule.h"
#include "model/models.h"

namespace {

using namespace fsmoe;

void
runTestbed(const sim::ClusterSpec &cluster, bool testbed_b)
{
    const auto grid = bench::table4Grid(testbed_b, cluster.numNodes);
    core::ParallelConfig par = model::paperParallelism(cluster);
    core::PerfModelSet models = core::PerfModelSet::fromCluster(cluster);

    std::vector<std::unique_ptr<core::Schedule>> schedules;
    for (const char *spec : {"tutel", "tutel-improved", "no-iio", "fsmoe"})
        schedules.push_back(core::Schedule::create(spec));

    std::vector<double> speedup_sum(4, 0.0);
    std::vector<double> wins(4, 0.0);
    for (const core::LayerShape &shape : grid) {
        // §6.3 adds the configured layer's gradient aggregation to the
        // measurement; a two-deep stack gives that traffic the dense
        // windows of the preceding layer to hide in, as in a real
        // model's steady state.
        core::ModelCost cost;
        cost.models = models;
        cost.layers.push_back(core::makeLayerCost(models, shape, par));
        cost.layers.push_back(cost.layers.back());
        double tutel_time = 0.0;
        for (size_t i = 0; i < schedules.size(); ++i) {
            double t = schedules[i]->iterationTimeMs(cost);
            if (i == 0)
                tutel_time = t;
            speedup_sum[i] += tutel_time / t;
            if (t <= tutel_time * 1.0001)
                wins[i] += 1.0;
        }
    }

    bench::header("Table 5: average speedup over Tutel(+PipeMoE) on " +
                  std::to_string(grid.size()) + " configured layers, " +
                  cluster.name);
    std::printf("%-18s %10s %14s\n", "Schedule", "Speedup",
                ">=Tutel cases");
    const char *names[] = {"Tutel", "Tutel-Improved", "FSMoE-No-IIO",
                           "FSMoE"};
    for (size_t i = 0; i < schedules.size(); ++i) {
        std::printf("%-18s %9.2fx %13.1f%%\n", names[i],
                    speedup_sum[i] / grid.size(),
                    100.0 * wins[i] / grid.size());
    }
    std::printf("\nPaper reference: Tutel-Improved 1.08-1.09x, "
                "FSMoE-No-IIO 1.12-1.16x, FSMoE 1.18-1.22x.\n\n");
}

} // namespace

int
main()
{
    runTestbed(fsmoe::sim::testbedA(), false);
    runTestbed(fsmoe::sim::testbedB(), true);
    return 0;
}
