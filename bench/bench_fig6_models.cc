/**
 * @file
 * Regenerates paper Fig. 6: speedups of FSMoE, FSMoE-No-IIO, Tutel,
 * Tutel-Improved and PipeMoE+Lina over DeepSpeed-MoE on real-world
 * models — GPT2-XL and Mixtral-7B on both testbeds, Mixtral-22B on
 * Testbed A. Settings follow §6.4: B=1, k=2, f=1.2, L=1024 on A /
 * 256 on B, E = number of nodes, 7 Mixtral-7B layers on Testbed B.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/schedules/schedule.h"
#include "model/models.h"

namespace {

using namespace fsmoe;

void
runCase(const model::ModelSpec &spec, const sim::ClusterSpec &cluster)
{
    core::ModelCost cost = model::makeModelCost(
        spec, cluster, model::paperParallelism(cluster));
    double ds = core::Schedule::create(core::ScheduleKind::DsMoeSequential)
                    ->iterationTimeMs(cost);
    std::printf("%-14s %-34s %9.1f", spec.name.c_str(),
                cluster.name.c_str(), ds);
    for (core::ScheduleKind kind :
         {core::ScheduleKind::Tutel, core::ScheduleKind::TutelImproved,
          core::ScheduleKind::PipeMoeLina, core::ScheduleKind::FsMoeNoIio,
          core::ScheduleKind::FsMoe}) {
        double t = core::Schedule::create(kind)->iterationTimeMs(cost);
        std::printf(" %7.2fx", ds / t);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace fsmoe;
    bench::header("Fig. 6: speedup over DeepSpeed-MoE (DS-MoE) on "
                  "real-world MoE models");
    std::printf("%-14s %-34s %9s %8s %8s %8s %8s %8s\n", "Model",
                "Testbed", "DS[ms]", "Tutel", "Tutel+", "Lina",
                "No-IIO", "FSMoE");

    sim::ClusterSpec a = sim::testbedA();
    sim::ClusterSpec b = sim::testbedB();

    // Testbed A: L = 1024, E = 6 nodes.
    runCase(model::gpt2XlMoe(a.numNodes, 1, 1024, 24), a);
    runCase(model::mixtral7B(a.numNodes, 1, 1024, 32), a);
    runCase(model::mixtral22B(a.numNodes, 1, 1024, 33), a);
    // Testbed B: L = 256, E = 8 nodes, Mixtral-7B trimmed to 7 layers.
    runCase(model::gpt2XlMoe(b.numNodes, 1, 256, 24), b);
    runCase(model::mixtral7B(b.numNodes, 1, 256, 7), b);

    std::printf("\nPaper reference: FSMoE 1.28-3.01x over DS-MoE, Tutel "
                "1.16-2.59x; FSMoE averages 1.19x over Tutel,\n1.12x over "
                "Tutel-Improved, 1.14x over PipeMoE+Lina, 1.07x over "
                "FSMoE-No-IIO.\n");
    return 0;
}
