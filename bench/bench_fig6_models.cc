/**
 * @file
 * Regenerates paper Fig. 6: speedups of FSMoE, FSMoE-No-IIO, Tutel,
 * Tutel-Improved and PipeMoE+Lina over DeepSpeed-MoE on real-world
 * models — GPT2-XL and Mixtral-7B on both testbeds, Mixtral-22B on
 * Testbed A. Settings follow §6.4: B=1, k=2, f=1.2, L=1024 on A /
 * 256 on B, E = number of nodes, 7 Mixtral-7B layers on Testbed B.
 *
 * Runs on the scenario-sweep engine: all 30 (case x schedule) points
 * are dispatched across the thread pool and each case's ModelCost is
 * derived once and shared by its six schedules through the engine's
 * cost cache.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/schedules/schedule_registry.h"
#include "runtime/scenario.h"
#include "runtime/sweep_engine.h"

namespace {

using namespace fsmoe;

/** One Fig. 6 case: every schedule of one (model, cluster, L, layers). */
std::vector<runtime::Scenario>
makeCase(const std::string &model, const std::string &cluster,
         int64_t seq_len, int num_layers = 0)
{
    std::vector<runtime::Scenario> out;
    for (const std::string &name :
         core::ScheduleRegistry::instance().names()) {
        runtime::Scenario s;
        s.model = model;
        s.cluster = cluster;
        s.schedule = name;
        s.batch = 1;
        s.seqLen = seq_len;
        s.numLayers = num_layers;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace

int
main()
{
    using namespace fsmoe;
    bench::header("Fig. 6: speedup over DeepSpeed-MoE (DS-MoE) on "
                  "real-world MoE models");
    std::printf("%-14s %-34s %9s %8s %8s %8s %8s %8s\n", "Model",
                "Testbed", "DS[ms]", "Tutel", "Tutel+", "Lina",
                "No-IIO", "FSMoE");

    // Testbed A: L = 1024, E = 6 nodes.
    // Testbed B: L = 256, E = 8 nodes, Mixtral-7B trimmed to 7 layers.
    std::vector<runtime::Scenario> grid;
    for (const auto &c : {makeCase("gpt2xl-moe", "testbedA", 1024),
                          makeCase("mixtral-7b", "testbedA", 1024),
                          makeCase("mixtral-22b", "testbedA", 1024),
                          makeCase("gpt2xl-moe", "testbedB", 256),
                          makeCase("mixtral-7b", "testbedB", 256, 7)})
        grid.insert(grid.end(), c.begin(), c.end());

    runtime::SweepEngine engine({/*numThreads=*/4});
    const auto results = engine.run(grid);

    // Scenarios arrive in case-major order, DS-MoE first within each
    // case (schedule-registry registration order).
    const size_t per_case = core::ScheduleRegistry::instance().names().size();
    for (size_t base = 0; base < results.size(); base += per_case) {
        const auto &ds = results[base];
        runtime::ScenarioRegistry &reg = runtime::ScenarioRegistry::instance();
        std::printf("%-14s %-34s %9.1f", ds.scenario.model.c_str(),
                    reg.makeCluster(ds.scenario.cluster).name.c_str(),
                    ds.makespanMs);
        for (size_t i = 1; i < per_case; ++i)
            std::printf(" %7.2fx",
                        ds.makespanMs / results[base + i].makespanMs);
        std::printf("\n");
    }

    const runtime::SweepStats stats = engine.stats();
    std::printf("\n%zu scenarios in %.1f ms on %d threads; cost cache "
                "%zu misses / %zu hits\n",
                stats.scenariosRun, stats.lastSweepWallMs,
                engine.options().numThreads, stats.costCacheMisses,
                stats.costCacheHits);
    std::printf("\nPaper reference: FSMoE 1.28-3.01x over DS-MoE, Tutel "
                "1.16-2.59x; FSMoE averages 1.19x over Tutel,\n1.12x over "
                "Tutel-Improved, 1.14x over PipeMoE+Lina, 1.07x over "
                "FSMoE-No-IIO.\n");
    return 0;
}
