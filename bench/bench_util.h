/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures: fixed-width table printing and the
 * Table 4 configuration grid.
 */
#ifndef FSMOE_BENCH_BENCH_UTIL_H
#define FSMOE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "core/moe_config.h"
#include "sim/cluster.h"

namespace fsmoe::bench {

/** Print a rule line of the given width. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    rule();
    std::printf("%s\n", title.c_str());
    rule();
}

/**
 * The paper's Table 4 grid: 3 (B) x 3 (heads) x 3 (L) x 3 (M) x
 * 3 (H/M) x 3 (f) x 2 (ffn) = 1458 configured layers. L depends on
 * the testbed (Testbed B uses halved sequence lengths, §6.1).
 */
inline std::vector<core::LayerShape>
table4Grid(bool testbed_b, int num_experts)
{
    const int64_t batches[] = {1, 2, 4};
    const int heads[] = {8, 16, 32};
    const int64_t lens_a[] = {512, 1024, 2048};
    const int64_t lens_b[] = {256, 512, 1024};
    const int64_t embeds[] = {1024, 2048, 4096};
    const double hscales[] = {2.0, 3.0, 4.0};
    const double factors[] = {1.2, 2.4, -1.0}; // -1 encodes "*"
    const core::FfnType ffns[] = {core::FfnType::Simple,
                                  core::FfnType::Mixtral};

    std::vector<core::LayerShape> grid;
    grid.reserve(1458);
    for (int64_t b : batches) {
        for (int h : heads) {
            for (int64_t l : testbed_b ? lens_b : lens_a) {
                for (int64_t m : embeds) {
                    for (double hs : hscales) {
                        for (double f : factors) {
                            for (core::FfnType ffn : ffns) {
                                core::LayerShape s;
                                s.batch = b;
                                s.numHeads = h;
                                s.seqLen = l;
                                s.embed = m;
                                s.hidden = static_cast<int64_t>(m * hs);
                                s.capacityFactor = f;
                                s.ffn = ffn;
                                s.topK = 2;
                                s.numExperts = num_experts;
                                grid.push_back(s);
                            }
                        }
                    }
                }
            }
        }
    }
    return grid;
}

} // namespace fsmoe::bench

#endif // FSMOE_BENCH_BENCH_UTIL_H
