/**
 * @file
 * Regenerates paper Fig. 8: speedups of the five schedules over
 * DS-MoE on Testbed A with pipeline parallelism enabled (GPipe,
 * N_PP = 2), for GPT2-XL, Mixtral-7B and Mixtral-22B.
 */
#include <cstdio>

#include "bench_util.h"
#include "model/gpipe.h"
#include "model/models.h"

namespace {

using namespace fsmoe;

void
runCase(const model::ModelSpec &spec, const sim::ClusterSpec &cluster,
        int micro_batches)
{
    auto ds = core::Schedule::create("ds-moe");
    model::GpipeResult base =
        model::gpipeIteration(*ds, spec, cluster, 2, micro_batches);
    std::printf("%-14s %9.1f", spec.name.c_str(), base.iterationMs);
    for (const char *sched_spec :
         {"tutel", "tutel-improved", "lina", "no-iio", "fsmoe"}) {
        auto sched = core::Schedule::create(sched_spec);
        model::GpipeResult r =
            model::gpipeIteration(*sched, spec, cluster, 2, micro_batches);
        std::printf(" %7.2fx", base.iterationMs / r.iterationMs);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace fsmoe;
    bench::header("Fig. 8: speedups over DS-MoE with pipeline "
                  "parallelism (GPipe, N_PP=2, Testbed A)");
    std::printf("%-14s %9s %8s %8s %8s %8s %8s\n", "Model", "DS[ms]",
                "Tutel", "Tutel+", "Lina", "No-IIO", "FSMoE");
    sim::ClusterSpec a = sim::testbedA();
    const int micro_batches = 4;
    runCase(model::gpt2XlMoe(a.numNodes / 2, 4, 1024, 24), a,
            micro_batches);
    runCase(model::mixtral7B(a.numNodes / 2, 4, 1024, 32), a,
            micro_batches);
    runCase(model::mixtral22B(a.numNodes / 2, 4, 1024, 33), a,
            micro_batches);
    std::printf("\nPaper reference: with PP enabled FSMoE averages 2.46x "
                "over DS-MoE, 1.16x over Tutel, 1.10x over\n"
                "Tutel-Improved, 1.12x over PipeMoE+Lina and 1.05x over "
                "FSMoE-No-IIO.\n");
    return 0;
}
