/**
 * @file
 * bench_sim_hotpath — the machine-readable simulator benchmark.
 *
 * Measures the three stages the scenario-sweep hot path consists of:
 *
 *   1. TaskGraph build throughput (ns/task) on a large synthetic
 *      graph, i.e. the allocation-light CSR representation;
 *   2. Simulator::run throughput (ns/task) on the same graphs, for
 *      both the production heap-based engine and the retained naive
 *      reference implementation (tests/sim_reference.h — the pre-PR
 *      inner loop), reporting the speedup; measured on a wide
 *      many-stream graph (where the naive per-event stream rescan is
 *      quadratic-ish) and on a schedule-shaped 6-stream graph (the
 *      shape real sweeps simulate);
 *   3. cold sweep throughput (scenarios/sec) over the demo grid with
 *      every cache disabled or cleared.
 *
 * With `--bench-json FILE` the numbers are also written as a flat
 * JSON object (see docs/PERFORMANCE.md for the schema); CI uploads it
 * as the BENCH_sim.json artifact, so the perf trajectory of the
 * simulator is tracked per-commit instead of anecdotally.
 *
 * Timing methodology: each measurement repeats until it has consumed
 * ~200 ms or 5 iterations, whichever comes first, and reports the
 * fastest iteration (minimum-of-N is robust against scheduler noise
 * on shared CI runners; this container exposes a single CPU, so only
 * single-thread numbers are meaningful).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/solver_cache.h"
#include "runtime/scenario.h"
#include "runtime/sweep_engine.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"
#include "sim_reference.h"

namespace {

using namespace fsmoe;
using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Fastest-of-N wall time of @p fn, in milliseconds. */
template <typename Fn>
double
bestOf(Fn &&fn, int max_iters = 5, double budget_ms = 200.0)
{
    double best = 1e300;
    double spent = 0.0;
    for (int i = 0; i < max_iters && (i == 0 || spent < budget_ms); ++i) {
        const auto t0 = Clock::now();
        fn();
        const double ms = elapsedMs(t0);
        best = std::min(best, ms);
        spent += ms;
    }
    return best;
}

/**
 * A synthetic pipelined workload: @p num_streams streams of equal
 * length, tasks cycling over links and op classes, each task
 * depending on its stream predecessor and (every third task) on a
 * task of the previous stream — the cross-stream fan-in that makes
 * eligibility tracking non-trivial. ~10% zero-duration barriers and
 * ~20% background-priority tasks mirror real schedule graphs.
 */
sim::TaskGraph
makeSynthetic(int num_tasks, int num_streams)
{
    std::mt19937 rng(0xbe9c4u);
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<int> quantum(1, 20);

    sim::TaskGraph g;
    g.reserve(num_tasks, 2 * num_tasks);
    const int per_stream = num_tasks / num_streams;
    std::vector<sim::TaskId> prev_row(num_streams, -1);
    std::vector<sim::TaskId> deps;
    for (int i = 0; i < per_stream; ++i) {
        for (int s = 0; s < num_streams; ++s) {
            deps.clear();
            if (prev_row[s] >= 0)
                deps.push_back(prev_row[s]);
            if (i % 3 == 1 && s > 0 && prev_row[s - 1] >= 0)
                deps.push_back(prev_row[s - 1]);
            const auto link = static_cast<sim::Link>((i + s) % 3);
            const auto op = static_cast<sim::OpType>(
                (i + s) % static_cast<int>(sim::OpType::NumOpTypes));
            const double duration =
                pct(rng) < 10 ? 0.0 : 0.05 * quantum(rng);
            const int priority = pct(rng) < 20 ? 1 : 0;
            prev_row[s] = g.addTask({"t", i * num_streams + s}, op, link,
                                    s, duration, deps, priority);
        }
    }
    return g;
}

struct SimMeasurement
{
    size_t tasks = 0;
    int streams = 0;
    double simulateNsPerTask = 0.0;
    double referenceNsPerTask = 0.0;

    double speedup() const
    {
        return simulateNsPerTask > 0.0
                   ? referenceNsPerTask / simulateNsPerTask
                   : 0.0;
    }
};

SimMeasurement
measureGraph(const sim::TaskGraph &g)
{
    SimMeasurement m;
    m.tasks = g.size();
    m.streams = g.numStreams();

    // Capture makespans from the timed runs themselves: they guard
    // against dead-code elimination and, incidentally, against the
    // two engines disagreeing (the fuzz test owns that check).
    double fast_makespan = 0.0;
    double ref_makespan = 0.0;
    const double fast_ms = bestOf(
        [&] { fast_makespan = sim::Simulator{}.run(g).makespan; });
    const double ref_ms =
        bestOf([&] { ref_makespan = sim::referenceRun(g).makespan; });
    if (ref_makespan != fast_makespan)
        std::fprintf(stderr,
                     "WARNING: reference and production simulators "
                     "disagree on the bench graph\n");

    m.simulateNsPerTask = fast_ms * 1e6 / static_cast<double>(m.tasks);
    m.referenceNsPerTask = ref_ms * 1e6 / static_cast<double>(m.tasks);
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--bench-json FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::header("simulator hot path");

    // ---- 1. graph build throughput ---------------------------------
    constexpr int kTasks = 16384;
    constexpr int kWideStreams = 512;
    const double build_ms =
        bestOf([&] { (void)makeSynthetic(kTasks, kWideStreams); });
    const double build_ns_per_task = build_ms * 1e6 / kTasks;
    std::printf("graph build    : %8.1f ns/task  (%d tasks)\n",
                build_ns_per_task, kTasks);

    // ---- 2. simulate throughput, wide + schedule-shaped ------------
    const sim::TaskGraph wide = makeSynthetic(kTasks, kWideStreams);
    const SimMeasurement wide_m = measureGraph(wide);
    std::printf("simulate (wide %d-stream graph, %zu tasks):\n",
                wide_m.streams, wide_m.tasks);
    std::printf("  heap engine  : %8.1f ns/task\n"
                "  naive ref    : %8.1f ns/task\n"
                "  speedup      : %8.2fx\n",
                wide_m.simulateNsPerTask, wide_m.referenceNsPerTask,
                wide_m.speedup());

    const sim::TaskGraph narrow = makeSynthetic(kTasks, 6);
    const SimMeasurement narrow_m = measureGraph(narrow);
    std::printf("simulate (schedule-shaped %d-stream graph, %zu tasks):\n",
                narrow_m.streams, narrow_m.tasks);
    std::printf("  heap engine  : %8.1f ns/task\n"
                "  naive ref    : %8.1f ns/task\n"
                "  speedup      : %8.2fx\n",
                narrow_m.simulateNsPerTask, narrow_m.referenceNsPerTask,
                narrow_m.speedup());

    // ---- 3. cold sweep throughput ----------------------------------
    // Fresh engine, SimResult cache off, solver caches cleared: every
    // scenario pays graph build + solver + simulation, which is the
    // first-sweep cost a user actually experiences.
    const auto grid = runtime::demoGrid();
    core::clearSolverCaches();
    runtime::SweepOptions opts;
    opts.numThreads = 1;
    opts.enableSimCache = false;
    runtime::SweepEngine engine(opts);
    const auto t0 = Clock::now();
    const auto results = engine.run(grid);
    const double sweep_ms = elapsedMs(t0);
    const double scen_per_sec = grid.size() * 1000.0 / sweep_ms;
    std::printf("cold sweep     : %zu scenarios in %.1f ms "
                "(%.1f scenarios/sec, 1 thread)\n",
                grid.size(), sweep_ms, scen_per_sec);
    if (results.size() != grid.size()) {
        std::fprintf(stderr, "sweep dropped scenarios\n");
        return 1;
    }

    if (json_path != nullptr) {
        std::FILE *f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path);
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"benchmark\": \"sim_hotpath\",\n"
            "  \"build_ns_per_task\": %.2f,\n"
            "  \"wide\": {\"tasks\": %zu, \"streams\": %d,\n"
            "    \"simulate_ns_per_task\": %.2f,\n"
            "    \"reference_ns_per_task\": %.2f,\n"
            "    \"speedup_vs_reference\": %.3f},\n"
            "  \"schedule_shaped\": {\"tasks\": %zu, \"streams\": %d,\n"
            "    \"simulate_ns_per_task\": %.2f,\n"
            "    \"reference_ns_per_task\": %.2f,\n"
            "    \"speedup_vs_reference\": %.3f},\n"
            "  \"cold_sweep\": {\"scenarios\": %zu,\n"
            "    \"wall_ms\": %.2f,\n"
            "    \"scenarios_per_sec\": %.2f}\n"
            "}\n",
            build_ns_per_task, wide_m.tasks, wide_m.streams,
            wide_m.simulateNsPerTask, wide_m.referenceNsPerTask,
            wide_m.speedup(), narrow_m.tasks, narrow_m.streams,
            narrow_m.simulateNsPerTask, narrow_m.referenceNsPerTask,
            narrow_m.speedup(), grid.size(), sweep_ms, scen_per_sec);
        std::fclose(f);
        std::printf("wrote %s\n", json_path);
    }
    return 0;
}
