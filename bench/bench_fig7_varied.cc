/**
 * @file
 * Regenerates paper Fig. 7: speedups of the five schedules over
 * DS-MoE on Testbed A with varied sequence length L in {512, 1024,
 * 2048} at P = 48, and varied GPU count P in {16, 32, 48} at
 * L = 1024 (P varies by changing the node count at 8 GPUs per node).
 */
#include <cstdio>

#include "bench_util.h"
#include "core/schedules/schedule.h"
#include "model/models.h"

namespace {

using namespace fsmoe;

void
runRow(const char *label, const sim::ClusterSpec &cluster, int64_t seq_len)
{
    model::ModelSpec spec =
        model::mixtral7B(cluster.numNodes, 1, seq_len, 16);
    core::ModelCost cost = model::makeModelCost(
        spec, cluster, model::paperParallelism(cluster));
    double ds = core::Schedule::create("ds-moe")->iterationTimeMs(cost);
    std::printf("%-22s %9.1f", label, ds);
    for (const char *spec :
         {"tutel", "tutel-improved", "lina", "no-iio", "fsmoe"}) {
        double t = core::Schedule::create(spec)->iterationTimeMs(cost);
        std::printf(" %7.2fx", ds / t);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace fsmoe;
    bench::header("Fig. 7: speedups over DS-MoE on Testbed A "
                  "(Mixtral-7B-style layers)");
    std::printf("%-22s %9s %8s %8s %8s %8s %8s\n", "Configuration",
                "DS[ms]", "Tutel", "Tutel+", "Lina", "No-IIO", "FSMoE");

    std::printf("-- varied L at P = 48 --\n");
    sim::ClusterSpec full = sim::testbedA();
    for (int64_t l : {512, 1024, 2048}) {
        std::string label = "L=" + std::to_string(l) + ", P=48";
        runRow(label.c_str(), full, l);
    }

    std::printf("-- varied P at L = 1024 --\n");
    for (int nodes : {2, 4, 6}) {
        sim::ClusterSpec cluster = sim::scaledTestbedA(nodes);
        std::string label =
            "P=" + std::to_string(nodes * cluster.gpusPerNode) +
            ", L=1024";
        runRow(label.c_str(), cluster, 1024);
    }

    std::printf("\nPaper reference: FSMoE 2.17-3.14x over DS-MoE and "
                "1.16-1.20x over Tutel across these sweeps.\n");
    return 0;
}
