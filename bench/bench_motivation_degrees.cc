/**
 * @file
 * Regenerates the §2.3 motivation statistic: across the 1458 Table 4
 * configurations on the 32-GPU testbed, how many prefer different
 * optimal pipeline degrees in forward vs backward (the paper measured
 * 912 of 1458), plus the distribution of chosen degrees.
 */
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/pipeline_solver.h"
#include "model/models.h"

int
main()
{
    using namespace fsmoe;
    sim::ClusterSpec cluster = sim::testbedB();
    core::ParallelConfig par = model::paperParallelism(cluster);
    core::PerfModelSet models = core::PerfModelSet::fromCluster(cluster);
    const auto grid = bench::table4Grid(true, cluster.numNodes);

    int differ = 0;
    std::map<std::pair<int, int>, int> degree_pairs;
    for (const core::LayerShape &shape : grid) {
        core::Workload w = core::deriveWorkload(shape, par);
        core::PipelineProblem fwd =
            core::makeProblem(models, w, core::Phase::Forward);
        core::PipelineProblem bwd = core::makeProblem(
            models, w, core::Phase::Backward,
            models.allreduce.predict(w.gradBytes));
        int rf = core::solvePipeline(fwd).r;
        int rb = core::solvePipeline(bwd).r;
        if (rf != rb)
            differ++;
        degree_pairs[{rf, rb}]++;
    }

    bench::header("Motivation (§2.3): forward-vs-backward optimal "
                  "pipeline degrees on " + cluster.name);
    std::printf("configs with different fwd/bwd degrees: %d / %zu "
                "(paper: 912 / 1458)\n\n",
                differ, grid.size());
    std::printf("%8s %8s %8s\n", "r_fwd", "r_bwd", "count");
    for (const auto &[pair, count] : degree_pairs)
        std::printf("%8d %8d %8d\n", pair.first, pair.second, count);
    return 0;
}
