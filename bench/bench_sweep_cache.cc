/**
 * @file
 * Measures the sweep engine's two memoization tiers on the demo grid:
 * a cold sweep (both caches empty), a warm sweep with only the
 * ModelCost cache (SimResult cache disabled), and a warm sweep with
 * both tiers — the repeated-sweep case that regression baselining
 * (fsmoe_sweep --diff) exercises on every run.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "runtime/scenario.h"
#include "runtime/sweep_engine.h"

namespace {

using namespace fsmoe;

struct Sample
{
    const char *label;
    double wallMs;
    runtime::SweepStats stats;
};

void
printSample(const Sample &s, double cold_ms)
{
    std::printf("%-34s %9.1f ms %7.1fx   %4zu/%-4zu %6zu/%-4zu\n",
                s.label, s.wallMs, cold_ms / s.wallMs,
                s.stats.costCacheHits, s.stats.costCacheMisses,
                s.stats.simCacheHits, s.stats.simCacheMisses);
}

} // namespace

int
main()
{
    // The same grid the blessed baseline and bench_sim_hotpath sweep,
    // so the tiers' hit rates describe the workload CI actually runs.
    const auto grid = runtime::demoGrid();
    char title[96];
    std::snprintf(title, sizeof title,
                  "Sweep-cache tiers on the %zu-scenario demo grid "
                  "(4 threads)",
                  grid.size());
    bench::header(title);
    std::printf("%-34s %12s %8s   %-9s %-10s\n", "configuration",
                "wall", "speedup", "cost h/m", "sim h/m");
    bench::rule();

    // Cold: every ModelCost derivation and every simulation runs.
    runtime::SweepOptions opts;
    opts.numThreads = 4;
    runtime::SweepEngine engine(opts);
    engine.run(grid);
    Sample cold{"cold (no warm state)", engine.stats().lastSweepWallMs,
                engine.stats()};

    // Warm, cost cache only: simulations rerun, pricing is cached.
    runtime::SweepOptions cost_only = opts;
    cost_only.enableSimCache = false;
    runtime::SweepEngine cost_engine(cost_only);
    cost_engine.run(grid);
    cost_engine.run(grid);
    Sample cost_warm{"warm, ModelCost cache only",
                     cost_engine.stats().lastSweepWallMs,
                     cost_engine.stats()};

    // Warm, both tiers: the whole sweep is served from memory.
    engine.run(grid);
    Sample both_warm{"warm, ModelCost + SimResult",
                     engine.stats().lastSweepWallMs, engine.stats()};

    printSample(cold, cold.wallMs);
    printSample(cost_warm, cold.wallMs);
    printSample(both_warm, cold.wallMs);
    bench::rule();
    std::printf("h/m = cumulative cache hits/misses over the engine's "
                "lifetime.\n");
    return 0;
}
