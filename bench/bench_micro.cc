/**
 * @file
 * Micro-benchmarks (google-benchmark) backing the paper's overhead
 * claims: Algorithm-1 solve cost (§6.2 reports ~193 ms per case for
 * SLSQP; our combined solve must be far cheaper to run 1458 cases),
 * gradient-partitioning cost, simulator throughput, gate kernels, the
 * GEMM kernel, and the functional AlltoAll algorithms.
 */
#include <benchmark/benchmark.h>

#include "core/gate.h"
#include "core/grad_partition.h"
#include "core/pipeline_solver.h"
#include "core/schedules/schedule.h"
#include "dist/communicator.h"
#include "model/models.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"

namespace {

using namespace fsmoe;

core::PipelineProblem
sampleProblem()
{
    sim::ClusterSpec cluster = sim::testbedB();
    core::PerfModelSet models = core::PerfModelSet::fromCluster(cluster);
    core::LayerShape shape;
    shape.embed = 2048;
    shape.hidden = 6144;
    shape.numExperts = cluster.numNodes;
    core::ParallelConfig par = model::paperParallelism(cluster);
    return core::makeProblem(models, core::deriveWorkload(shape, par),
                             core::Phase::Backward, 1.0);
}

void
BM_SolvePipelineAlgorithm1(benchmark::State &state)
{
    core::PipelineProblem p = sampleProblem();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::solvePipeline(p));
}
BENCHMARK(BM_SolvePipelineAlgorithm1);

void
BM_SolvePipelineExhaustive(benchmark::State &state)
{
    core::PipelineProblem p = sampleProblem();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::solvePipelineExhaustive(p));
}
BENCHMARK(BM_SolvePipelineExhaustive);

void
BM_GradPartition(benchmark::State &state)
{
    const int layers = static_cast<int>(state.range(0));
    std::vector<core::GeneralizedLayer> gls;
    for (int i = 0; i < layers; ++i) {
        core::GeneralizedLayer gl;
        gl.moe = sampleProblem();
        gl.moe.tGar = 0.0;
        gl.denseOlpMs = 0.5;
        gl.gradBytes = 8.0 * (1 << 20);
        gls.push_back(gl);
    }
    core::LinearModel ar{8.37e-2, 5.99e-7, 1.0};
    solver::DeConfig de;
    de.maxGenerations = 40;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::partitionGradients(gls, ar, de));
}
BENCHMARK(BM_GradPartition)->Arg(4)->Arg(12);

void
BM_ScheduleFsMoe(benchmark::State &state)
{
    sim::ClusterSpec cluster = sim::testbedB();
    model::ModelSpec spec = model::mixtral7B(cluster.numNodes, 1, 256, 7);
    core::ModelCost cost = model::makeModelCost(
        spec, cluster, model::paperParallelism(cluster));
    auto sched = core::Schedule::create("fsmoe");
    for (auto _ : state)
        benchmark::DoNotOptimize(sched->iterationTimeMs(cost));
}
BENCHMARK(BM_ScheduleFsMoe);

void
BM_Simulator(benchmark::State &state)
{
    sim::ClusterSpec cluster = sim::testbedB();
    model::ModelSpec spec = model::mixtral7B(cluster.numNodes, 1, 256, 7);
    core::ModelCost cost = model::makeModelCost(
        spec, cluster, model::paperParallelism(cluster));
    sim::TaskGraph graph =
        core::Schedule::create("tutel")->build(cost);
    sim::Simulator simulator;
    for (auto _ : state)
        benchmark::DoNotOptimize(simulator.run(graph));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(graph.size()));
}
BENCHMARK(BM_Simulator);

void
BM_GateForward(benchmark::State &state)
{
    auto kind = static_cast<core::GateKind>(state.range(0));
    Rng rng(3);
    auto gate = core::makeGate(kind, 512, 8, 2, rng);
    Tensor x = rng.normalTensor({512, 512});
    for (auto _ : state)
        benchmark::DoNotOptimize(gate->forward(x));
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_GateForward)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_Gemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(4);
    Tensor a = rng.normalTensor({n, n});
    Tensor b = rng.normalTensor({n, n});
    Tensor c({n, n});
    for (auto _ : state)
        gemm(a, Trans::No, b, Trans::No, c);
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256);

void
BM_AlltoAllFunctional(benchmark::State &state)
{
    auto algo = static_cast<dist::A2aAlgo>(state.range(0));
    const int world = 8;
    dist::Communicator comm(world);
    Rng rng(5);
    std::vector<Tensor> bufs;
    for (int r = 0; r < world; ++r)
        bufs.push_back(rng.normalTensor({world * 16, 64}));
    dist::Group everyone;
    for (int r = 0; r < world; ++r)
        everyone.push_back(r);
    for (auto _ : state) {
        auto copy = bufs;
        comm.allToAll(copy, everyone, algo, /*ranks_per_node=*/4);
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_AlltoAllFunctional)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
