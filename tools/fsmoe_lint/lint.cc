#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace fsmoe::lint {

namespace {

const char *const kRuleIds[] = {
    "unordered-iter", "float-accum-unordered", "banned-rand",
    "banned-time",    "pointer-hash",          "thread-id",
    "addr-order",     "static-mutable",        "nonatomic-write",
    "wallclock-deadline",
};

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else if (c != '\r') {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

/**
 * Blank comments and string/char literals so pattern matches never
 * fire inside them. Comment *text* is preserved separately per line
 * (the static-mutable rule searches it for thread-safety keywords).
 */
struct Stripped
{
    std::vector<std::string> code;    ///< Literal/comment-blanked lines.
    std::vector<std::string> comment; ///< Comment text per line.
};

Stripped
stripComments(const std::vector<std::string> &lines)
{
    Stripped out;
    out.code.reserve(lines.size());
    out.comment.resize(lines.size());
    bool in_block = false;
    for (size_t li = 0; li < lines.size(); ++li) {
        const std::string &s = lines[li];
        std::string code;
        code.reserve(s.size());
        for (size_t i = 0; i < s.size();) {
            if (in_block) {
                if (s[i] == '*' && i + 1 < s.size() && s[i + 1] == '/') {
                    in_block = false;
                    i += 2;
                } else {
                    out.comment[li].push_back(s[i]);
                    ++i;
                }
                continue;
            }
            char c = s[i];
            if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
                out.comment[li].append(s.substr(i + 2));
                break;
            }
            if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
                in_block = true;
                i += 2;
                continue;
            }
            if (c == '"' || c == '\'') {
                char quote = c;
                ++i;
                while (i < s.size()) {
                    if (s[i] == '\\') {
                        i += 2;
                        continue;
                    }
                    if (s[i] == quote) {
                        ++i;
                        break;
                    }
                    ++i;
                }
                code.push_back(quote);
                code.push_back(quote);
                continue;
            }
            code.push_back(c);
            ++i;
        }
        out.code.push_back(code);
    }
    return out;
}

/** Last identifier in @p s before position @p end. */
std::string
lastIdentifierBefore(const std::string &s, size_t end)
{
    size_t e = end;
    while (e > 0 && !(std::isalnum(static_cast<unsigned char>(s[e - 1])) ||
                      s[e - 1] == '_'))
        --e;
    size_t b = e;
    while (b > 0 && (std::isalnum(static_cast<unsigned char>(s[b - 1])) ||
                     s[b - 1] == '_'))
        --b;
    return s.substr(b, e - b);
}

/**
 * Names declared with an unordered / ordered associative container
 * type in @p code lines. A declaration may span lines; we accumulate
 * from the line introducing the type to the terminating ';' and take
 * the last identifier before it.
 */
void
collectContainerDecls(const std::vector<std::string> &code,
                      std::set<std::string> *unordered,
                      std::set<std::string> *ordered)
{
    static const std::regex kUnordered(
        R"(std\s*::\s*unordered_(map|set|multimap|multiset)\s*<)");
    static const std::regex kOrdered(
        R"(std\s*::\s*(map|set|multimap|multiset)\s*<)");
    for (size_t li = 0; li < code.size(); ++li) {
        bool is_uno = std::regex_search(code[li], kUnordered);
        bool is_ord = !is_uno && std::regex_search(code[li], kOrdered);
        if (!is_uno && !is_ord)
            continue;
        // Join lines to the terminating ';' (bounded lookahead).
        std::string joined = code[li];
        size_t lj = li;
        while (joined.find(';') == std::string::npos &&
               lj + 1 < code.size() && lj - li < 8) {
            ++lj;
            joined += ' ';
            joined += code[lj];
        }
        size_t semi = joined.find(';');
        if (semi == std::string::npos)
            continue;
        // `... > name;` / `... > name = ...;` / `... > name{...};`
        size_t stop = semi;
        size_t eq = joined.rfind('=', semi);
        if (eq != std::string::npos)
            stop = eq;
        size_t brace = joined.rfind('{', stop);
        if (brace != std::string::npos && brace > joined.rfind('>', stop))
            stop = brace;
        std::string name = lastIdentifierBefore(joined, stop);
        if (name.empty() || name == "const")
            continue;
        (is_uno ? unordered : ordered)->insert(name);
    }
}

/** Identifier the range expression of a range-for names (last path
 *  component: `state.counts` -> "counts", `*m` -> "m"). */
std::string
rangeIdentifier(const std::string &range_expr)
{
    std::string e = trim(range_expr);
    // Drop trailing calls like `.items()` -> keep the callee name.
    while (!e.empty() && (e.back() == ')' || e.back() == '(')) {
        e.pop_back();
    }
    return lastIdentifierBefore(e, e.size());
}

bool
isCommentKeyworded(const std::vector<std::string> &comment, size_t line_idx)
{
    static const std::regex kKeywords(
        R"(thread[- ]saf|thread[- ]safety|synchroni[sz]|guarded by|protected by|single[- ]threaded|atomic|magic static|immutable after|init[- ]once|once_flag)",
        std::regex::icase);
    size_t begin = line_idx >= 10 ? line_idx - 10 : 0;
    for (size_t i = begin; i <= line_idx && i < comment.size(); ++i) {
        if (!comment[i].empty() && std::regex_search(comment[i], kKeywords))
            return true;
    }
    return false;
}

/** Brace-context tracking: what kind of scope each '{' opened. */
enum class ScopeKind
{
    Namespace,
    Record,
    Other
};

struct SimpleRule
{
    const char *rule;
    std::regex pattern;
    const char *message;
};

const std::vector<SimpleRule> &
simpleRules()
{
    static const std::vector<SimpleRule> rules = [] {
        std::vector<SimpleRule> r;
        r.push_back({"banned-rand",
                     std::regex(R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|\brandom_device\b|(^|[^\w:.])rand\s*\(\s*\))"),
                     "unseeded/global randomness; use a seeded tensor::Rng "
                     "(or thread explicit seeds) so runs reproduce"});
        r.push_back({"banned-time",
                     std::regex(R"((^|[^\w:.])time\s*\(|\bgettimeofday\b|\bsystem_clock\b|(^|[^\w:.])clock\s*\(\s*\))"),
                     "wall-clock value; results must not depend on when "
                     "they ran (steady_clock durations that feed only "
                     "telemetry belong in base/stats timers)"});
        r.push_back({"pointer-hash",
                     std::regex(R"(std\s*::\s*hash\s*<[^>]*\*)"),
                     "hashing a pointer keys on an address, which differs "
                     "per run under ASLR; key on stable content instead"});
        r.push_back({"thread-id",
                     std::regex(R"(this_thread\s*::\s*get_id|\bpthread_self\b|\bgettid\b)"),
                     "thread-id-dependent value; results must be identical "
                     "across thread counts and scheduling"});
        r.push_back({"addr-order",
                     std::regex(R"(reinterpret_cast\s*<\s*u?intptr_t\s*>|std\s*::\s*less\s*<[^>]*\*)"),
                     "address-keyed ordering; addresses differ per run "
                     "under ASLR — order by stable ids or content"});
        // Literal-stripping blanks fopen's mode string, so read-mode
        // fopen also fires; audited read probes go on the allowlist.
        r.push_back({"nonatomic-write",
                     std::regex(R"(std\s*::\s*ofstream\b|\bfopen\s*\()"),
                     "direct stream/FILE write to a final path; a crash "
                     "mid-write leaves a torn file that readers see as "
                     "valid-but-truncated — route output through "
                     "fsmoe::fileio::atomicWriteFile (tmp + rename)"});
        return r;
    }();
    return rules;
}

struct FileAnalysis
{
    std::vector<std::string> raw;
    Stripped stripped;
    std::set<std::string> unordered;
    std::set<std::string> ordered;
};

void
analyzeDecls(FileAnalysis *fa)
{
    collectContainerDecls(fa->stripped.code, &fa->unordered, &fa->ordered);
}

void
addFinding(std::vector<Finding> *out, const std::string &path, size_t li,
           const std::string &rule, const std::string &msg,
           const std::string &raw_line)
{
    Finding f;
    f.file = path;
    f.line = static_cast<int>(li + 1);
    f.rule = rule;
    f.message = msg;
    f.excerpt = trim(raw_line);
    out->push_back(std::move(f));
}

} // namespace

const std::vector<std::string> &
ruleIds()
{
    static const std::vector<std::string> ids(std::begin(kRuleIds),
                                              std::end(kRuleIds));
    return ids;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &text,
           const std::string &header_text)
{
    FileAnalysis fa;
    fa.raw = splitLines(text);
    fa.stripped = stripComments(fa.raw);
    analyzeDecls(&fa);
    if (!header_text.empty()) {
        Stripped hs = stripComments(splitLines(header_text));
        collectContainerDecls(hs.code, &fa.unordered, &fa.ordered);
    }

    const std::vector<std::string> &code = fa.stripped.code;
    const std::vector<std::string> &comment = fa.stripped.comment;
    std::vector<Finding> findings;

    // ---- Simple pattern rules -------------------------------------
    for (size_t li = 0; li < code.size(); ++li) {
        for (const SimpleRule &r : simpleRules()) {
            if (std::regex_search(code[li], r.pattern))
                addFinding(&findings, path, li, r.rule, r.message,
                           fa.raw[li]);
        }
    }

    // ---- wallclock-deadline ---------------------------------------
    // banned-time already flags system_clock anywhere; this rule is
    // the sharper complaint for wall-clock sources (including
    // high_resolution_clock, which may alias system_clock, and
    // CLOCK_REALTIME, which banned-time cannot see) feeding deadline
    // or timeout arithmetic, where an NTP step or suspend/resume makes
    // the deadline fire early, late, or never. Context is judged over
    // a +/-2 line window so the keyword may sit in the signature or
    // the comparison rather than on the clock call itself.
    static const std::regex kWallClock(
        R"(\bsystem_clock\b|\bhigh_resolution_clock\b|\bCLOCK_REALTIME\b|\bgettimeofday\b)");
    static const std::regex kDeadlineCtx(
        R"(deadline|timeout|time_out|expir|backoff|watchdog|heartbeat|wait_until|wait_for|retry|lease)",
        std::regex::icase);
    for (size_t li = 0; li < code.size(); ++li) {
        if (!std::regex_search(code[li], kWallClock))
            continue;
        size_t begin = li >= 2 ? li - 2 : 0;
        size_t end = std::min(code.size(), li + 3);
        bool ctx = false;
        for (size_t wi = begin; wi < end && !ctx; ++wi)
            ctx = std::regex_search(code[wi], kDeadlineCtx);
        if (ctx)
            addFinding(&findings, path, li, "wallclock-deadline",
                       "wall-clock source in deadline/timeout "
                       "arithmetic: an NTP step or suspend/resume "
                       "makes this deadline fire early, late, or "
                       "never — measure waits on "
                       "std::chrono::steady_clock",
                       fa.raw[li]);
    }

    // ---- unordered-iter + float-accum-unordered -------------------
    static const std::regex kRangeFor(R"(for\s*\(([^;)]*):([^)]*)\))");
    static const std::regex kSort(R"(std\s*::\s*(stable_)?sort\s*\()");
    static const std::regex kAccum(R"([\w\]\.\->]+\s*[+\-]=[^=])");
    for (size_t li = 0; li < code.size(); ++li) {
        // Range-for headers may wrap; join up to 3 lines.
        std::string head = code[li];
        for (size_t j = 1; j <= 2 && li + j < code.size(); ++j)
            head += ' ' + code[li + j];
        std::smatch m;
        if (!std::regex_search(head, m, kRangeFor))
            continue;
        // Only report at the line the `for` itself starts on.
        if (code[li].find("for") == std::string::npos)
            continue;
        std::string id = rangeIdentifier(m[2].str());
        if (id.empty() || fa.unordered.count(id) == 0)
            continue;

        // Examine the loop body plus a trailing window for a sorting
        // sink: std::sort/std::stable_sort, or insertion into an
        // ordered associative container declared in this file.
        size_t window_end = std::min(code.size(), li + 16);
        bool sorted_sink = false;
        bool float_accum = false;
        bool in_body = true; // Rough bound: body ends at a bare '}'.
        for (size_t wi = li; wi < window_end; ++wi) {
            if (std::regex_search(code[wi], kSort)) {
                sorted_sink = true;
            }
            for (const std::string &ord : fa.ordered) {
                if (code[wi].find(ord + ".insert") != std::string::npos ||
                    code[wi].find(ord + ".emplace") != std::string::npos)
                    sorted_sink = true;
            }
            // Accumulation only counts inside the loop body proper.
            if (in_body && wi > li && !float_accum &&
                std::regex_search(code[wi], kAccum) &&
                code[wi].find("||") == std::string::npos)
                float_accum = true;
            std::string t = trim(code[wi]);
            if (wi > li && (t == "}" || t == "};"))
                in_body = false;
        }
        if (float_accum) {
            addFinding(&findings, path, li, "float-accum-unordered",
                       "accumulation inside iteration over unordered "
                       "container '" + id + "': float addition is not "
                       "associative, so the total depends on hash order; "
                       "accumulate over a sorted copy",
                       fa.raw[li]);
        }
        if (!sorted_sink) {
            addFinding(&findings, path, li, "unordered-iter",
                       "iteration over unordered container '" + id +
                       "' with no sorting sink in sight: results flow "
                       "onward in hash order; collect and std::sort "
                       "(or insert into a std::set/std::map)",
                       fa.raw[li]);
        }
    }

    // ---- static-mutable -------------------------------------------
    // Track brace scopes so namespace-scope object declarations are
    // distinguishable from locals and record members.
    static const std::regex kStaticDecl(R"(^\s*static\s+(.*))");
    static const std::regex kExemptType(
        R"(\bstd\s*::\s*(mutex|recursive_mutex|shared_mutex|atomic|once_flag|condition_variable)\b|\bconst\b|\bconstexpr\b|\bthread_local\b)");
    static const std::regex kNamespaceOpen(R"(\bnamespace\b[^;{]*\{)");
    static const std::regex kRecordOpen(
        R"((\bstruct\b|\bclass\b|\bunion\b|\benum\b)[^;{]*\{)");
    static const std::regex kNsDecl(
        R"(^([A-Za-z_][\w:]*(\s*<[^;]*>)?(\s*[&*])?\s+)+([A-Za-z_]\w*)\s*(;|=|\{))");
    static const std::regex kNsDeclExclude(
        R"(^\s*(using|typedef|namespace|template|extern|return|friend|public|private|protected|case|goto|delete|new|throw|if|else|for|while|do|switch|class|struct|union|enum)\b|\(|^\s*#)");

    std::vector<ScopeKind> scopes;
    for (size_t li = 0; li < code.size(); ++li) {
        const std::string &cl = code[li];
        // Handle declarations *before* pushing this line's braces so
        // the decl is judged in its enclosing scope.
        bool at_ns_scope =
            !scopes.empty() && scopes.back() == ScopeKind::Namespace;

        std::smatch m;
        if (std::regex_search(cl, m, kStaticDecl)) {
            std::string joined = cl;
            size_t lj = li;
            while (joined.find(';') == std::string::npos &&
                   joined.find('{') == std::string::npos &&
                   lj + 1 < code.size() && lj - li < 4) {
                ++lj;
                joined += ' ' + code[lj];
            }
            bool exempt = std::regex_search(joined, kExemptType) ||
                          joined.find('(') != std::string::npos;
            if (!exempt) {
                // Meyer singleton: `static T x;` followed by
                // `return x;` within two lines is the C++11
                // thread-safe local-static idiom.
                size_t semi = joined.find(';');
                size_t stop = semi == std::string::npos ? joined.size()
                                                        : semi;
                size_t eq = joined.rfind('=', stop);
                if (eq != std::string::npos)
                    stop = eq;
                std::string name =
                    semi == std::string::npos
                        ? std::string()
                        : lastIdentifierBefore(joined, stop);
                bool meyer = false;
                for (size_t j = lj + 1;
                     !name.empty() && j < code.size() && j <= lj + 2; ++j) {
                    if (trim(code[j]) == "return " + name + ";")
                        meyer = true;
                }
                if (!meyer && !isCommentKeyworded(comment, li)) {
                    addFinding(
                        &findings, path, li, "static-mutable",
                        "mutable static '" + name +
                            "' has no documented thread-safety story; "
                            "add a comment (e.g. \"guarded by <mutex>\" "
                            "or \"thread-safe: atomic\") or make it "
                            "const/constexpr",
                        fa.raw[li]);
                }
            }
        } else if (at_ns_scope && std::regex_search(cl, m, kNsDecl) &&
                   !std::regex_search(cl, kNsDeclExclude) &&
                   !std::regex_search(cl, kExemptType) &&
                   !std::regex_search(cl, kNamespaceOpen) &&
                   !std::regex_search(cl, kRecordOpen)) {
            std::string joined = cl;
            size_t lj = li;
            while (joined.find(';') == std::string::npos &&
                   lj + 1 < code.size() && lj - li < 4) {
                ++lj;
                joined += ' ' + code[lj];
            }
            if (!std::regex_search(joined, kExemptType) &&
                joined.find('(') == std::string::npos &&
                !isCommentKeyworded(comment, li)) {
                size_t semi = joined.find(';');
                size_t stop = semi == std::string::npos ? joined.size()
                                                        : semi;
                size_t eq = joined.rfind('=', stop);
                if (eq != std::string::npos)
                    stop = eq;
                std::string name = lastIdentifierBefore(joined, stop);
                addFinding(
                    &findings, path, li, "static-mutable",
                    "namespace-scope mutable '" + name +
                        "' has no documented thread-safety story; add "
                        "a comment (e.g. \"guarded by <mutex>\") or "
                        "make it const/constexpr",
                    fa.raw[li]);
            }
        }

        // Update scope stack from this line's braces.
        for (size_t i = 0; i < cl.size(); ++i) {
            if (cl[i] == '{') {
                std::string prefix = cl.substr(0, i + 1);
                if (std::regex_search(prefix, kNamespaceOpen))
                    scopes.push_back(ScopeKind::Namespace);
                else if (std::regex_search(prefix, kRecordOpen))
                    scopes.push_back(ScopeKind::Record);
                else
                    scopes.push_back(ScopeKind::Other);
            } else if (cl[i] == '}') {
                if (!scopes.empty())
                    scopes.pop_back();
            }
        }
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return findings;
}

bool
loadAllowlist(const std::string &path, std::vector<AllowEntry> *out,
              std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open allowlist: " + path;
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::istringstream iss(t);
        AllowEntry e;
        iss >> e.rule >> e.fileSuffix;
        std::getline(iss, e.substring);
        e.substring = trim(e.substring);
        if (e.rule.empty() || e.fileSuffix.empty() || e.substring.empty()) {
            if (error)
                *error = path + ":" + std::to_string(lineno) +
                         ": malformed allowlist entry (want: rule "
                         "file-suffix line-substring)";
            return false;
        }
        out->push_back(std::move(e));
    }
    return true;
}

namespace {

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
allowed(const Finding &f, const std::vector<AllowEntry> &allow)
{
    for (const AllowEntry &e : allow) {
        if (e.rule != "*" && e.rule != f.rule)
            continue;
        if (!endsWith(f.file, e.fileSuffix))
            continue;
        if (f.excerpt.find(e.substring) != std::string::npos)
            return true;
    }
    return false;
}

std::string
readFile(const std::string &path, bool *ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *ok = false;
        return "";
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    *ok = true;
    return oss.str();
}

} // namespace

std::vector<Finding>
lintPaths(const std::vector<std::string> &paths,
          const std::vector<AllowEntry> &allow, size_t *suppressed,
          std::string *error)
{
    namespace fs = std::filesystem;
    std::set<std::string> files; // sorted + deduplicated
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 !ec && it != fs::recursive_directory_iterator(); ++it) {
                if (!it->is_regular_file())
                    continue;
                std::string ext = it->path().extension().string();
                if (ext == ".h" || ext == ".cc" || ext == ".cpp")
                    files.insert(it->path().generic_string());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.insert(fs::path(p).generic_string());
        } else {
            if (error)
                *error = "no such file or directory: " + p;
            return {};
        }
    }

    std::vector<Finding> all;
    size_t dropped = 0;
    for (const std::string &f : files) {
        bool ok = false;
        std::string text = readFile(f, &ok);
        if (!ok) {
            if (error)
                *error = "cannot read: " + f;
            return {};
        }
        std::string header_text;
        if (endsWith(f, ".cc") || endsWith(f, ".cpp")) {
            fs::path hp = fs::path(f);
            hp.replace_extension(".h");
            std::error_code ec;
            if (fs::is_regular_file(hp, ec)) {
                bool hok = false;
                header_text = readFile(hp.generic_string(), &hok);
            }
        }
        for (Finding &fd : lintSource(f, text, header_text)) {
            if (allowed(fd, allow))
                ++dropped;
            else
                all.push_back(std::move(fd));
        }
    }
    if (suppressed)
        *suppressed = dropped;
    return all;
}

} // namespace fsmoe::lint
