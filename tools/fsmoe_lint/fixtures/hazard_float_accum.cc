// Fixture: floating-point accumulation over an unordered range — the
// sum depends on hash order because float addition is not
// associative. Expected findings: exactly 1 float-accum-unordered
// (plus the underlying unordered-iter).
#include <string>
#include <unordered_map>

double
total()
{
    std::unordered_map<std::string, double> weights;
    double sum = 0.0;
    for (const auto &kv : weights)
        sum += kv.second; // finding: order-dependent float sum
    return sum;
}
