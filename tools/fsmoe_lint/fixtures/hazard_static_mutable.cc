// Fixture: mutable statics that carry no explanatory comment about
// how concurrent access is handled. Expected findings: exactly 2
// static-mutable.
#include <string>
#include <vector>

namespace {

std::vector<std::string> g_names; // finding 1: bare global

} // namespace

int
nextTicket()
{
    static int counter = 0; // finding 2: bare mutable static
    return ++counter;
}
