// Fixture: wall-clock sources in deadline/timeout arithmetic.
// Expected findings: exactly 3 wallclock-deadline. The system_clock
// line also trips banned-time (the overlap is by design — banned-time
// flags the source, wallclock-deadline the sharper deadline misuse),
// so the total is 4.
#include <chrono>
#include <ctime>

bool
heartbeatExpired(long deadline_ns)
{
    long now_ns = // finding 1: wall-clock heartbeat deadline
        std::chrono::system_clock::now().time_since_epoch().count();
    return now_ns > deadline_ns;
}

long
timeoutRemainingMs(long timeout_ms)
{
    struct timespec ts;
    clock_gettime(CLOCK_REALTIME, &ts); // finding 2: realtime base
    return timeout_ms - ts.tv_sec * 1000;
}

long
backoffElapsedMs()
{
    // finding 3: high_resolution_clock may alias system_clock
    auto backoff_t0 = std::chrono::high_resolution_clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               backoff_t0.time_since_epoch())
        .count();
}
