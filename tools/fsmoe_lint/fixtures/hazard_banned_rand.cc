// Fixture: banned randomness sources. Expected findings: exactly 3
// banned-rand.
#include <cstdlib>
#include <random>

int
roll()
{
    std::srand(42);                 // finding 1: global-state seeding
    int a = std::rand();            // finding 2: global-state RNG
    std::random_device rd;          // finding 3: nondeterministic seed
    return a + static_cast<int>(rd());
}
