// Fixture: near-miss patterns that must produce zero findings. Each
// block sits just on the safe side of a rule.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace {

// Guarded by g_mu below; only the registry mutates it.
std::vector<std::string> g_documented;

std::mutex g_mu;              // exempt type: synchronization primitive
std::atomic<int> g_hits{0};   // exempt type: atomic
constexpr int kLimit = 8;     // exempt: constexpr
const char *const kName = ""; // exempt: const

} // namespace

// Unordered iteration with a sorting sink: collect then sort.
std::vector<std::string>
sortedKeys(const std::unordered_map<std::string, int> &m)
{
    std::vector<std::string> keys;
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

// Unordered iteration draining into an ordered container.
std::map<std::string, int>
reorder(const std::unordered_map<std::string, int> &m)
{
    std::map<std::string, int> out;
    for (const auto &kv : m)
        out.insert(kv);
    return out;
}

// Meyer singleton: C++11 guarantees thread-safe initialization.
std::vector<int> &
pool()
{
    static std::vector<int> instance;
    return instance;
}

// Seeded engine: reproducible, not a banned source.
int
draw()
{
    std::mt19937_64 rng(12345);
    return static_cast<int>(rng() & 0x7fffffff);
}

// steady_clock durations are allowed (telemetry timing, not results).
double
elapsedMs(std::chrono::steady_clock::time_point t0)
{
    auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::milli>(dt).count();
}

// Deadlines on the monotonic clock: exactly what wallclock-deadline
// demands — deadline/timeout keywords near steady_clock are fine.
bool
deadlinePassed(std::chrono::steady_clock::time_point deadline)
{
    return std::chrono::steady_clock::now() >= deadline;
}

// Iterating a plain vector accumulates in declaration order: fine.
double
vectorSum(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum;
}
