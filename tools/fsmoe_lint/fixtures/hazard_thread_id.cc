// Fixture: thread-id-dependent values break the N-threads ==
// 1-thread contract. Expected findings: exactly 2 thread-id.
#include <functional>
#include <thread>

size_t
shardOf()
{
    auto id = std::this_thread::get_id(); // finding 1
    return std::hash<std::thread::id>{}(id);
}

unsigned long
rawTid()
{
    return pthread_self(); // finding 2
}
