// Fixture: non-atomic writes straight to a final output path. A crash
// between open and close leaves a torn file at the destination; all
// output must go through fsmoe::fileio::atomicWriteFile. Expected
// findings: 3 nonatomic-write.
#include <cstdio>
#include <fstream>
#include <string>

void
writeReport(const std::string &path, const std::string &body)
{
    std::ofstream out(path); // BAD: torn file if we die before close
    out << body;
}

void
writeLog(const char *path, const char *line)
{
    std::FILE *f = std::fopen(path, "w"); // BAD: truncates, then dies?
    if (f == nullptr)
        return;
    std::fputs(line, f);
    std::fclose(f);
    FILE *g = fopen(path, "a"); // BAD: unqualified fopen, same hazard
    if (g != nullptr)
        std::fclose(g);
}
