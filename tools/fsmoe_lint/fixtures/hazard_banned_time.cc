// Fixture: wall-clock values feeding results. Expected findings:
// exactly 3 banned-time.
#include <chrono>
#include <ctime>

long
stamp()
{
    long t = time(nullptr); // finding 1: wall-clock seconds
    auto now = std::chrono::system_clock::now(); // finding 2: wall clock
    long c = clock();       // finding 3: CPU clock ticks
    (void)now;
    return t + c;
}
