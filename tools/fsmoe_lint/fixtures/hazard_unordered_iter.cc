// Fixture: unordered-container iteration flowing into output with no
// sorting sink. Expected findings: exactly 2 unordered-iter.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

void
printAll()
{
    std::unordered_map<std::string, int> table;
    for (const auto &kv : table) // finding 1: hash-order output
        std::printf("%s=%d\n", kv.first.c_str(), kv.second);

    std::unordered_set<std::string> keys;
    for (const auto &k : keys) // finding 2: hash-order output
        std::printf("%s\n", k.c_str());
}
