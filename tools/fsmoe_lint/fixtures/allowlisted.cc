// Fixture: one real hazard that fixtures/allowlist.txt suppresses.
// With the allowlist: 0 findings, 1 allowlisted. Without: 1 finding.
#include <cstdio>
#include <string>
#include <unordered_set>

void
dumpTags()
{
    std::unordered_set<std::string> tags;
    for (const auto &t : tags) // suppressed by fixtures/allowlist.txt
        std::printf("%s\n", t.c_str());
}
