// Fixture: address-keyed ordering — iteration/sort order derived from
// object addresses differs per run. Expected findings: exactly 2
// addr-order.
#include <cstdint>
#include <map>

struct Task;

uint64_t
orderKey(const Task *t)
{
    return reinterpret_cast<uintptr_t>(t); // finding 1: address as key
}

using TaskRank = std::map<Task *, int, std::less<Task *>>; // finding 2
