// Fixture: hashing pointers keys caches on addresses, which change
// per run under ASLR. Expected findings: exactly 1 pointer-hash.
#include <cstddef>
#include <functional>

struct Node;

size_t
keyOf(const Node *n)
{
    return std::hash<const Node *>{}(n); // finding: address-based key
}
