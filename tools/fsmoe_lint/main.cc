/**
 * @file
 * fsmoe_lint command line: scan files/directories for the determinism
 * hazard classes documented in lint.h and docs/CORRECTNESS.md.
 *
 *   fsmoe_lint [--allowlist FILE] [--list-rules] [--quiet] PATH...
 *
 * Exit status: 0 when no (unsuppressed) findings, 1 when findings
 * were reported, 2 on usage or I/O errors. CI runs
 *   fsmoe_lint --allowlist tools/fsmoe_lint/allowlist.txt src/
 * as a gate; the fixture self-tests (lint_test.cc) pin the exact
 * finding counts per hazard class.
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--allowlist FILE] [--list-rules] [--quiet] "
                 "PATH...\n"
                 "  Scans .h/.cc/.cpp files (directories recursively) for\n"
                 "  determinism hazards; exit 0 = clean, 1 = findings,\n"
                 "  2 = usage/IO error.\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    std::vector<fsmoe::lint::AllowEntry> allow;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--allowlist") == 0 && i + 1 < argc) {
            std::string err;
            if (!fsmoe::lint::loadAllowlist(argv[++i], &allow, &err)) {
                std::fprintf(stderr, "fsmoe_lint: %s\n", err.c_str());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const std::string &r : fsmoe::lint::ruleIds())
                std::printf("%s\n", r.c_str());
            return 0;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.empty())
        return usage(argv[0]);

    size_t suppressed = 0;
    std::string err;
    std::vector<fsmoe::lint::Finding> findings =
        fsmoe::lint::lintPaths(paths, allow, &suppressed, &err);
    if (!err.empty()) {
        std::fprintf(stderr, "fsmoe_lint: %s\n", err.c_str());
        return 2;
    }
    for (const fsmoe::lint::Finding &f : findings) {
        std::printf("%s:%d: [%s] %s\n    > %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str(), f.excerpt.c_str());
    }
    if (!quiet) {
        std::printf("fsmoe_lint: %zu finding(s), %zu allowlisted\n",
                    findings.size(), suppressed);
    }
    return findings.empty() ? 0 : 1;
}
