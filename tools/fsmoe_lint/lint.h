/**
 * @file
 * fsmoe_lint: a static determinism linter for the FSMoE tree.
 *
 * The repo's central contract is byte-identical results across thread
 * counts, shards, processes, and build types (see docs/CORRECTNESS.md
 * and docs/PERFORMANCE.md). The dynamic gates (baseline `cmp`, fuzz
 * vs tests/sim_reference.h) catch a violation only after it lands on
 * a covered path; this linter catches the *hazard classes* that cause
 * them at lint time, before any run:
 *
 *   unordered-iter        iteration over std::unordered_{map,set}
 *                         whose results flow onward in hash order
 *                         (output, cache keys, appended collections)
 *                         without a sorting sink
 *   float-accum-unordered floating-point accumulation inside such a
 *                         loop (float addition is not associative, so
 *                         even a sorted sink cannot repair the sum)
 *   banned-rand           std::rand / srand / std::random_device
 *                         (unseeded or global-state randomness)
 *   banned-time           wall-clock sources: time(), gettimeofday,
 *                         clock(), std::chrono::system_clock
 *                         (steady_clock durations for telemetry are
 *                         fine — they never feed results)
 *   pointer-hash          std::hash over a pointer type (addresses
 *                         differ per run under ASLR)
 *   thread-id             std::this_thread::get_id / pthread_self /
 *                         gettid feeding values
 *   addr-order            address-keyed ordering:
 *                         reinterpret_cast<[u]intptr_t>,
 *                         std::less<T*>
 *   static-mutable        a mutable static / namespace-scope object
 *                         with no documented thread-safety story
 *                         (comment keywords: "thread-safe",
 *                         "guarded by", "synchroni...", ...)
 *
 * The analysis is a deliberately simple lexical scan (comments and
 * string literals are blanked, declarations are tracked by name, a
 * .cc file also ingests declarations from its same-basename header).
 * False positives are expected and handled by an *explicit, commented
 * allowlist file* (tools/fsmoe_lint/allowlist.txt): every entry names
 * the rule, the file, and a distinctive substring of the offending
 * line, plus a comment explaining why the site is safe. The linter is
 * itself deterministic: files are scanned in sorted path order and
 * findings are reported in (file, line) order.
 *
 * Exit codes (main.cc): 0 no findings, 1 findings, 2 usage/IO error.
 */
#ifndef FSMOE_TOOLS_LINT_H
#define FSMOE_TOOLS_LINT_H

#include <string>
#include <vector>

namespace fsmoe::lint {

/** One hazard hit. */
struct Finding
{
    std::string file;    ///< Path as given to the scanner.
    int line = 0;        ///< 1-based line number.
    std::string rule;    ///< Rule id, e.g. "unordered-iter".
    std::string message; ///< Human-readable explanation.
    std::string excerpt; ///< Trimmed source line (allowlist matching).
};

/** One allowlist entry: rule + file suffix + line substring. */
struct AllowEntry
{
    std::string rule;       ///< Rule id or "*" for any rule.
    std::string fileSuffix; ///< Matches when the path ends with this.
    std::string substring;  ///< Must occur in the offending line.
};

/** All rule ids, in report order. */
const std::vector<std::string> &ruleIds();

/**
 * Parse an allowlist file. Lines are
 *   rule<whitespace>file-suffix<whitespace>line-substring...
 * ('#' comments and blank lines ignored; the substring is the rest of
 * the line, so it may contain spaces). Returns false and sets *error
 * on I/O failure or a malformed entry.
 */
bool loadAllowlist(const std::string &path, std::vector<AllowEntry> *out,
                   std::string *error);

/**
 * Lint one file's contents. @p header_text supplies declarations of a
 * sibling header scanned for container types only (pass "" if none).
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &text,
                                const std::string &header_text);

/**
 * Lint files/directories: directories are walked recursively for
 * .h/.cc/.cpp files, paths are deduplicated and sorted, each .cc/.cpp
 * pairs with its same-directory same-basename .h when present.
 * Findings suppressed by @p allow are dropped; if @p suppressed is
 * non-null it receives their count.
 */
std::vector<Finding> lintPaths(const std::vector<std::string> &paths,
                               const std::vector<AllowEntry> &allow,
                               size_t *suppressed, std::string *error);

} // namespace fsmoe::lint

#endif // FSMOE_TOOLS_LINT_H
