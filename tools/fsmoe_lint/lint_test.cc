/**
 * @file
 * Self-tests for fsmoe_lint: every hazard class must be flagged with
 * the exact expected count on its fixture, the clean fixture must
 * produce nothing, the allowlist must suppress (only) what it names,
 * and the real src/ tree must lint clean under the shipped allowlist.
 *
 * Paths come from the build:
 *   FSMOE_LINT_FIXTURES  tools/fsmoe_lint/fixtures
 *   FSMOE_LINT_ALLOWLIST tools/fsmoe_lint/allowlist.txt (shipped)
 *   FSMOE_LINT_SRC       src/
 */
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace {

using fsmoe::lint::AllowEntry;
using fsmoe::lint::Finding;
using fsmoe::lint::lintPaths;
using fsmoe::lint::loadAllowlist;

std::string
fixture(const std::string &name)
{
    return std::string(FSMOE_LINT_FIXTURES) + "/" + name;
}

/** Lint one fixture with no allowlist; return findings. */
std::vector<Finding>
lintFixture(const std::string &name)
{
    std::string error;
    std::vector<Finding> out =
        lintPaths({fixture(name)}, {}, nullptr, &error);
    EXPECT_EQ(error, "");
    return out;
}

/** Count findings per rule id. */
std::map<std::string, int>
byRule(const std::vector<Finding> &findings)
{
    std::map<std::string, int> counts;
    for (const Finding &f : findings)
        ++counts[f.rule];
    return counts;
}

struct FixtureCase
{
    const char *file;
    const char *rule;
    int count;         ///< Expected findings for `rule`.
    int totalFindings; ///< Expected findings across all rules.
};

// One positive fixture per hazard class, with exact counts. The
// float-accum fixture also trips unordered-iter (the accumulation sits
// inside an unordered loop with no sink) — that overlap is by design,
// so its total is 2 while the rule-specific count is 1.
const FixtureCase kCases[] = {
    {"hazard_unordered_iter.cc", "unordered-iter", 2, 2},
    {"hazard_float_accum.cc", "float-accum-unordered", 1, 2},
    {"hazard_banned_rand.cc", "banned-rand", 3, 3},
    {"hazard_banned_time.cc", "banned-time", 3, 3},
    {"hazard_pointer_hash.cc", "pointer-hash", 1, 1},
    {"hazard_thread_id.cc", "thread-id", 2, 2},
    {"hazard_addr_order.cc", "addr-order", 2, 2},
    {"hazard_static_mutable.cc", "static-mutable", 2, 2},
    {"hazard_nonatomic_write.cc", "nonatomic-write", 3, 3},
    // The system_clock line also trips banned-time — by design, same
    // as the float-accum overlap above.
    {"hazard_wallclock_deadline.cc", "wallclock-deadline", 3, 4},
};

TEST(FsmoeLint, EveryHazardClassIsFlaggedWithExactCount)
{
    for (const FixtureCase &c : kCases) {
        SCOPED_TRACE(c.file);
        std::vector<Finding> findings = lintFixture(c.file);
        EXPECT_EQ(static_cast<int>(findings.size()), c.totalFindings);
        std::map<std::string, int> counts = byRule(findings);
        EXPECT_EQ(counts[c.rule], c.count);
    }
}

TEST(FsmoeLint, EveryRuleIdHasAPositiveFixture)
{
    std::map<std::string, int> seen;
    for (const FixtureCase &c : kCases)
        for (const Finding &f : lintFixture(c.file))
            ++seen[f.rule];
    for (const std::string &rule : fsmoe::lint::ruleIds())
        EXPECT_GT(seen[rule], 0) << "no fixture exercises " << rule;
}

TEST(FsmoeLint, CleanFixtureProducesNoFindings)
{
    std::vector<Finding> findings = lintFixture("clean.cc");
    for (const Finding &f : findings)
        ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule
                      << "] " << f.message;
}

TEST(FsmoeLint, FindingsCarryFileLineAndExcerpt)
{
    std::vector<Finding> findings =
        lintFixture("hazard_banned_rand.cc");
    ASSERT_EQ(findings.size(), 3u);
    for (const Finding &f : findings) {
        EXPECT_NE(f.file.find("hazard_banned_rand.cc"),
                  std::string::npos);
        EXPECT_GT(f.line, 0);
        EXPECT_FALSE(f.excerpt.empty());
    }
    // Deterministic report order: ascending line numbers.
    EXPECT_TRUE(std::is_sorted(
        findings.begin(), findings.end(),
        [](const Finding &a, const Finding &b) { return a.line < b.line; }));
}

TEST(FsmoeLint, AllowlistSuppressesExactlyTheNamedSite)
{
    std::string error;
    std::vector<AllowEntry> allow;
    ASSERT_TRUE(loadAllowlist(fixture("allowlist.txt"), &allow, &error))
        << error;
    ASSERT_EQ(allow.size(), 1u);
    EXPECT_EQ(allow[0].rule, "unordered-iter");

    // Without the allowlist: one finding.
    std::vector<Finding> raw = lintFixture("allowlisted.cc");
    ASSERT_EQ(raw.size(), 1u);
    EXPECT_EQ(raw[0].rule, "unordered-iter");

    // With it: zero findings, one suppression counted.
    size_t suppressed = 0;
    std::vector<Finding> filtered = lintPaths(
        {fixture("allowlisted.cc")}, allow, &suppressed, &error);
    EXPECT_EQ(error, "");
    EXPECT_TRUE(filtered.empty());
    EXPECT_EQ(suppressed, 1u);

    // The allowlist is site-specific: it must not mask the same rule
    // elsewhere.
    std::vector<Finding> other = lintPaths(
        {fixture("hazard_unordered_iter.cc")}, allow, &suppressed,
        &error);
    EXPECT_EQ(other.size(), 2u);
}

TEST(FsmoeLint, MalformedAllowlistIsRejected)
{
    std::string error;
    std::vector<AllowEntry> allow;
    EXPECT_FALSE(
        loadAllowlist("/nonexistent/allowlist.txt", &allow, &error));
    EXPECT_FALSE(error.empty());
}

TEST(FsmoeLint, RealTreeLintsCleanUnderShippedAllowlist)
{
    std::string error;
    std::vector<AllowEntry> allow;
    ASSERT_TRUE(loadAllowlist(FSMOE_LINT_ALLOWLIST, &allow, &error))
        << error;
    size_t suppressed = 0;
    std::vector<Finding> findings =
        lintPaths({FSMOE_LINT_SRC}, allow, &suppressed, &error);
    EXPECT_EQ(error, "");
    for (const Finding &f : findings)
        ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule
                      << "] " << f.message << "\n    > " << f.excerpt;
    // The shipped allowlist entries must all still be in use; a stale
    // entry means the underlying site was fixed and the entry should
    // be removed.
    EXPECT_EQ(suppressed, allow.size());
}

} // namespace
